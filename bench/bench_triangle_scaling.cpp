// E1 (Theorem 32 / Theorem 1): deterministic triangle listing rounds scale
// as ~n^{1/3+o(1)} and match the randomized engine, while the unbalanced
// id-range engine degrades on skewed inputs and the naive baseline is
// linear in m. Decomposition model rounds are reported separately
// (identical for every engine — see DESIGN.md §2.1).

#include "bench_common.hpp"

#include "baselines/naive.hpp"
#include "core/api/list_cliques.hpp"
#include "graph/generators.hpp"

namespace dcl {
namespace {

graph make_graph(int family, vertex n) {
  switch (family) {
    case 0:  // constant average degree 14 gnp
      return gen::gnp(n, 14.0 / double(n), 7);
    default:  // power law, avg degree 12
      return gen::power_law(n, 2.4, 12.0, 7);
  }
}

const char* family_name(int f) { return f == 0 ? "gnp" : "powerlaw"; }
const char* engine_name(int e) {
  return e == 0 ? "deterministic" : e == 1 ? "randomized" : "unbalanced";
}

void BM_TriangleListing(benchmark::State& state) {
  const auto family = int(state.range(0));
  const auto n = vertex(state.range(1));
  const auto engine = int(state.range(2));
  const auto g = make_graph(family, n);
  listing_report rep;
  clique_set got(3);
  for (auto _ : state) {
    listing_query opt;
    opt.lb = engine == 0   ? lb_engine::deterministic
                 : engine == 1 ? lb_engine::randomized
                               : lb_engine::unbalanced;
    opt.seed = 99;
    got = list_triangles_congest(g, opt, &rep);
  }
  state.counters["rounds"] = double(rep.ledger.rounds());
  state.counters["messages"] = double(rep.ledger.messages());
  state.counters["decomp_model"] = double(rep.model_decomposition_rounds);
  state.counters["triangles"] = double(got.size());
  state.counters["levels"] = double(rep.levels.size());
  state.counters["lb_load"] = rep.max_normalized_load;
  state.SetLabel(std::string(family_name(family)) + "/" +
                 engine_name(engine));
  bench::slope_store::instance().add(
      std::string(family_name(family)) + "/" + engine_name(engine),
      double(n), double(rep.ledger.rounds()));
  if (rep.max_normalized_load > 0)
    bench::slope_store::instance().add(
        std::string(family_name(family)) + "/" + engine_name(engine) +
            "/thm6-load",
        double(n), rep.max_normalized_load);
}

void BM_NaiveCentral(benchmark::State& state) {
  const auto n = vertex(state.range(0));
  const auto g = make_graph(0, n);
  baseline::naive_result res{clique_set(3), {}};
  for (auto _ : state) res = baseline::naive_central_listing(g, 3);
  state.counters["rounds"] = double(res.ledger.rounds());
  bench::slope_store::instance().add("gnp/naive", double(n),
                                     double(res.ledger.rounds()));
}

}  // namespace
}  // namespace dcl

BENCHMARK(dcl::BM_TriangleListing)
    ->ArgsProduct({{0, 1}, {128, 256, 512, 1024}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(dcl::BM_NaiveCentral)
    ->ArgsProduct({{128, 256, 512, 1024}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

DCL_BENCH_MAIN("E1: triangle listing — rounds vs n")
