// Thread-scaling benchmark for the cluster-parallel CONGEST simulation
// runtime. Per graph family and per sim_threads value it measures the
// wall-clock of the full simulated run and records the simulated CONGEST
// cost (rounds/messages), cross-checking that cliques and ledger are
// bit-identical to the single-threaded run — the determinism invariant the
// runtime refactor must preserve (DESIGN.md §6).
//
//   ./bench_congest_parallel [--smoke] [max_threads] [out.json]
//
// --smoke shrinks every family (CI smoke runs — sanity, not timing).
//
// Emits one JSON document to stdout AND to the output file (default
// BENCH_congest_parallel.json) so the perf trajectory is tracked across
// commits. Self-contained on purpose: no google-benchmark dependency.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/api/list_cliques.hpp"
#include "graph/generators.hpp"

namespace {

using dcl::bench::best_seconds;

struct workload {
  std::string name;
  dcl::graph g;
  int p;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dcl;
  bool smoke = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else
      pos.push_back(argv[i]);
  }
  int max_threads = smoke ? 2 : 8;
  if (pos.size() > 0) {
    max_threads = std::atoi(pos[0]);
    if (max_threads < 1) {
      // A non-numeric first positional (e.g. a filename) atoi's to 0 and
      // would silently skip every timed run AND the determinism
      // cross-check while still exiting 0 — reject it loudly instead.
      std::cerr << "usage: bench_congest_parallel [--smoke] [max_threads]"
                   " [out.json]\n       max_threads must be a positive"
                   " integer, got '"
                << pos[0] << "'\n";
      return 2;
    }
  }
  const std::string out_path =
      pos.size() > 1 ? pos[1] : "BENCH_congest_parallel.json";

  // Multi-cluster families (ring_of_cliques, weakly linked planted
  // partitions) decompose into many clusters per level — the parallelism
  // the runtime exploits. gnp and Kneser are expanders, i.e. single-cluster
  // controls: they measure the runtime's overhead when there is nothing to
  // parallelize.
  std::vector<workload> workloads;
  if (smoke) {
    workloads.push_back({"ring_of_cliques_k3", gen::ring_of_cliques(4, 8), 3});
    workloads.push_back({"gnp_k3", gen::gnp(60, 0.12, 7), 3});
  } else {
    workloads.push_back({"ring_of_cliques_k3", gen::ring_of_cliques(16, 20),
                         3});
    workloads.push_back({"planted_partition_k3",
                         gen::planted_partition(8, 30, 0.5, 0.002, 11), 3});
    workloads.push_back({"planted_partition_k4",
                         gen::planted_partition(5, 50, 0.6, 0.003, 23), 4});
    workloads.push_back({"gnp_k3", gen::gnp(260, 0.08, 7), 3});
    workloads.push_back({"kneser_k3", gen::kneser(9, 3), 3});
  }

  std::ostringstream js;
  js << "{\n  \"benchmark\": \"congest_parallel\",\n"
     << "  " << bench::meta_json() << ",\n"
     << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n  \"families\": [\n";

  bool first_family = true;
  for (const auto& w : workloads) {
    listing_query q;
    q.p = w.p;
    listing_report ref_report;
    clique_set ref((w.p));
    {
      listing_session ref_session(w.g, {.threads = 1});
      auto res = ref_session.run(q);
      ref = std::move(res.cliques);
      ref_report = std::move(res.report);
    }

    std::int64_t clusters_listed = 0;
    for (const auto& lv : ref_report.levels) clusters_listed += lv.clusters_listed;

    if (!first_family) js << ",\n";
    first_family = false;
    js << "    {\"family\": \"" << w.name << "\", \"n\": "
       << w.g.num_vertices() << ", \"edges\": " << w.g.num_edges()
       << ", \"p\": " << w.p << ", \"cliques\": " << ref.size()
       << ", \"rounds\": " << ref_report.ledger.rounds()
       << ", \"messages\": " << ref_report.ledger.messages()
       << ", \"levels\": " << ref_report.levels.size()
       << ", \"clusters_listed\": " << clusters_listed
       << ",\n     \"results\": [";

    double t1 = 0.0;
    bool first_t = true;
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      // One session per worker-pool size; the timed loop measures warm
      // per-query latency, which is the session API's serving shape.
      listing_session session(w.g, {.threads = threads});
      const double secs = best_seconds([&] {
        const auto res = session.run(q);
        // Determinism cross-check: clique set and total simulated cost
        // must match the single-threaded reference exactly.
        if (!(res.cliques == ref) ||
            res.report.ledger.rounds() != ref_report.ledger.rounds() ||
            res.report.ledger.messages() != ref_report.ledger.messages())
          std::abort();
      });
      if (threads == 1) t1 = secs;
      if (!first_t) js << ", ";
      first_t = false;
      js << "{\"sim_threads\": " << threads << ", \"seconds\": " << secs
         << ", \"speedup\": " << (secs > 0 ? t1 / secs : 0.0) << "}";
    }
    js << "]}";
  }
  js << "\n  ]\n}\n";
  return dcl::bench::emit_json(out_path, js.str());
}
