// E8 (Lemma 8 + drivers): per-level edge retirement — a constant fraction
// of edges must leave the graph each level, giving logarithmic depth.

#include "bench_common.hpp"

#include "core/api/list_cliques.hpp"
#include "graph/generators.hpp"

namespace dcl {
namespace {

void BM_RecursionDepth(benchmark::State& state) {
  const auto n = vertex(state.range(0));
  const auto inv_eps = int(state.range(1));
  const bool multi_scale = state.range(2) != 0;
  // The multi-scale family leaves the bridge edges for a second recursion
  // level; plain sparse gnp is usually one expander cluster and finishes
  // in a single level.
  const auto g = multi_scale ? gen::ring_of_cliques(vertex(n / 8), 8)
                             : gen::gnp(n, 10.0 / double(n), 23);
  listing_report rep;
  for (auto _ : state) {
    listing_query opt;
    opt.epsilon = 1.0 / double(inv_eps);
    list_triangles_congest(g, opt, &rep);
  }
  double min_removed_frac = 1.0;
  for (const auto& ls : rep.levels) {
    if (ls.edges_before > 0)
      min_removed_frac =
          std::min(min_removed_frac,
                   double(ls.edges_removed) / double(ls.edges_before));
  }
  state.counters["levels"] = double(rep.levels.size());
  state.counters["min_removed_frac"] = min_removed_frac;
  state.counters["fallback"] = rep.used_fallback ? 1.0 : 0.0;
  state.SetLabel(std::string(multi_scale ? "ring" : "gnp") + "/eps=1/" +
                 std::to_string(inv_eps));
}

}  // namespace
}  // namespace dcl

BENCHMARK(dcl::BM_RecursionDepth)
    ->ArgsProduct({{256, 512, 1024}, {12, 18}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

DCL_BENCH_MAIN("E8: recursion depth and per-level edge retirement")
