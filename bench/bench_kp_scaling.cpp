// E2 (Theorem 36 / Theorem 1): deterministic K_p listing rounds for
// p = 4, 5 — the target shape is n^{1-2/p+o(1)}. Density scales with
// sqrt(n) so that V−_C stays populated and the full split-tree pipeline
// (delivery, Theorem 31, Lemma 37) is exercised at every size.

#include "bench_common.hpp"

#include <cmath>

#include "core/api/list_cliques.hpp"
#include "graph/generators.hpp"

namespace dcl {
namespace {

void BM_KpListing(benchmark::State& state) {
  const auto p = int(state.range(0));
  const auto n = vertex(state.range(1));
  // Average degree ~ 3*sqrt(n): above the V− threshold 2*sqrt(n).
  const double avg = 3.0 * std::sqrt(double(n));
  const auto g = gen::gnp(n, std::min(0.9, avg / double(n)), 11);
  listing_report rep;
  clique_set got(p);
  for (auto _ : state) {
    listing_query opt;
    opt.p = p;
    got = list_kp_congest(g, opt, &rep);
  }
  state.counters["rounds"] = double(rep.ledger.rounds());
  state.counters["messages"] = double(rep.ledger.messages());
  state.counters["decomp_model"] = double(rep.model_decomposition_rounds);
  state.counters["cliques"] = double(got.size());
  state.counters["deferred"] = double(
      rep.levels.empty() ? 0 : rep.levels[0].deferred_clusters);
  bench::slope_store::instance().add("K" + std::to_string(p), double(n),
                                     double(rep.ledger.rounds()));
}

}  // namespace
}  // namespace dcl

BENCHMARK(dcl::BM_KpListing)
    ->ArgsProduct({{4}, {64, 128, 256, 512}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(dcl::BM_KpListing)
    ->ArgsProduct({{5}, {64, 128, 256}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

DCL_BENCH_MAIN("E2: K_p listing — rounds vs n (target slope 1-2/p)")
