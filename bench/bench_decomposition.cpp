// E6 (Theorem 5 substitute): expander decomposition quality — remainder
// fraction vs the ε budget, certified conductance vs the φ target, cluster
// counts, recursion depth, and the separately-charged CS20 model rounds.

#include "bench_common.hpp"

#include "expander/decomposition.hpp"
#include "graph/generators.hpp"

namespace dcl {
namespace {

graph make_graph(int family, vertex n) {
  switch (family) {
    case 0:
      return gen::gnp(n, 12.0 / double(n), 5);
    case 1:
      return gen::power_law(n, 2.4, 10.0, 5);
    case 2:
      return gen::planted_partition(vertex(n / 50), 50, 0.4, 0.01, 5);
    default:
      return gen::ring_of_cliques(vertex(n / 16), 16);
  }
}
const char* family_name(int f) {
  return f == 0 ? "gnp" : f == 1 ? "powerlaw" : f == 2 ? "planted" : "ring";
}

void BM_Decomposition(benchmark::State& state) {
  const auto family = int(state.range(0));
  const auto inv_eps = int(state.range(1));
  const auto g = make_graph(family, 600);
  expander_decomposition d;
  for (auto _ : state) {
    decomposition_options opt;
    opt.epsilon = 1.0 / double(inv_eps);
    d = decompose(g, opt);
  }
  double min_phi = 1.0;
  for (const auto& c : d.clusters)
    min_phi = std::min(min_phi, c.certified_phi);
  state.counters["remainder_frac"] = d.remainder_fraction(g);
  state.counters["clusters"] = double(d.clusters.size());
  state.counters["min_phi_cert"] = d.clusters.empty() ? 0.0 : min_phi;
  state.counters["phi_used"] = d.phi_used;
  state.counters["cut_depth"] = double(d.max_cut_depth);
  state.counters["model_rounds"] = double(d.model_rounds);
  state.SetLabel(std::string(family_name(family)) + "/eps=1/" +
                 std::to_string(inv_eps));
}

}  // namespace
}  // namespace dcl

BENCHMARK(dcl::BM_Decomposition)
    ->ArgsProduct({{0, 1, 2, 3}, {6, 12, 18}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

DCL_BENCH_MAIN("E6: expander decomposition (remainder <= eps*m holds)")
