// shard_launch — stand up a forked worker fleet on this machine, run one
// sharded listing, and self-check the fold against a single-process run
// (DESIGN.md §14). The smallest end-to-end demo of the shard runtime:
//
//   shard_launch [--shards N] [--p P] [--n V] [--prob X] [--seed S]
//                [--engine congest|local] [--partition block|hashed]
//                [--trace]
//
// Exits 0 when the sharded cliques (and, under congest, the full ledger)
// are bit-identical to the solo session; 1 on mismatch or worker failure.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>

#include "core/api/session.hpp"
#include "graph/generators.hpp"
#include "shard/coordinator.hpp"
#include "shard/launch.hpp"

namespace {

using namespace dcl;

int usage() {
  std::cerr << "usage: shard_launch [--shards N] [--p P] [--n V] [--prob X]\n"
               "                    [--seed S] [--engine congest|local]\n"
               "                    [--partition block|hashed] [--trace]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 2;
  int p = 3;
  vertex n = 400;
  double prob = 0.08;
  std::uint64_t seed = 7;
  listing_engine engine = listing_engine::congest_sim;
  shard::partition_scheme scheme = shard::partition_scheme::block;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--shards") {
      shards = std::atoi(next());
    } else if (a == "--p") {
      p = std::atoi(next());
    } else if (a == "--n") {
      n = std::atoi(next());
    } else if (a == "--prob") {
      prob = std::atof(next());
    } else if (a == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--engine") {
      const std::string_view e = next();
      if (e == "congest")
        engine = listing_engine::congest_sim;
      else if (e == "local")
        engine = listing_engine::local_kclist;
      else
        return usage();
    } else if (a == "--partition") {
      const std::string_view s = next();
      if (s == "block")
        scheme = shard::partition_scheme::block;
      else if (s == "hashed")
        scheme = shard::partition_scheme::hashed;
      else
        return usage();
    } else if (a == "--trace") {
      trace = true;
    } else {
      return usage();
    }
  }
  if (shards < 1 || p < 3 || n < 1) return usage();

  const graph g = gen::gnp(n, prob, seed);
  listing_query q;
  q.p = p;
  q.trace = trace && engine == listing_engine::congest_sim;

  // Solo first (forked children must not inherit worker threads; the solo
  // session below uses threads = 1 and spawns none).
  session_options sopt;
  sopt.engine = engine;
  listing_session solo(g, sopt);
  const query_result want = solo.run(q);

  auto workers = shard::launch_fork_workers(shards);
  shard::shard_options opt;
  opt.partitioner.scheme = scheme;
  opt.partitioner.seed = seed;
  opt.worker_session = sopt;
  int rc = 0;
  try {
    shard::shard_coordinator coord(g, shard::take_links(workers), opt);
    const query_result got = coord.run(q);
    const bool cliques_ok = got.cliques == want.cliques;
    const bool ledger_ok = got.report.ledger == want.report.ledger;
    std::cout << "shards=" << shards << " p=" << p << " n=" << n
              << " engine="
              << (engine == listing_engine::congest_sim ? "congest" : "local")
              << " cliques=" << got.count
              << " rounds=" << got.report.ledger.rounds()
              << " messages=" << got.report.ledger.messages() << "\n"
              << "solo-identical: cliques=" << (cliques_ok ? "yes" : "NO")
              << " ledger=" << (ledger_ok ? "yes" : "NO") << "\n";
    for (const auto& s : coord.worker_stats())
      std::cout << "  shard " << s.shard << ": queries=" << s.queries
                << " frames_sent=" << s.wire.frames_sent
                << " bytes_sent=" << s.wire.bytes_sent
                << " flushes=" << s.wire.flushes << "\n";
    coord.shutdown();
    if (!cliques_ok || !ledger_ok) rc = 1;
  } catch (const std::exception& e) {
    std::cerr << "shard_launch: " << e.what() << "\n";
    rc = 1;
  }
  for (auto& w : workers)
    if (shard::wait_worker(w) != 0) rc = 1;
  return rc;
}
