// replay_trace — record a transport trace from a live listing run, or
// re-charge a recorded trace against the pluggable cost models of
// congest/replay.hpp (DESIGN.md §10).
//
//   replay_trace record [--p P] [--n N] [--prob X] [--seed S]
//                       [--threads T] [--out FILE] [--jsonl FILE]
//     Runs a traced congest_sim listing on a G(n, prob) instance,
//     self-checks that measured-model replay reproduces the live ledger
//     bit-identically (exit 1 if not), and writes the binary trace.
//
//   replay_trace replay FILE [--model measured|spec|cs20|all]
//     Reads a binary trace and prints the reconstructed ledger under the
//     requested model(s).

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "congest/replay.hpp"
#include "congest/trace.hpp"
#include "core/api/session.hpp"
#include "graph/generators.hpp"

namespace {

using namespace dcl;

int usage() {
  std::cerr
      << "usage:\n"
         "  replay_trace record [--p P] [--n N] [--prob X] [--seed S]\n"
         "                      [--threads T] [--out FILE] [--jsonl FILE]\n"
         "  replay_trace replay FILE [--model measured|spec|cs20|all]\n";
  return 2;
}

bool ledgers_equal(const cost_ledger& a, const cost_ledger& b) {
  if (a.rounds() != b.rounds() || a.messages() != b.messages()) return false;
  const auto& pa = a.phases();
  const auto& pb = b.phases();
  if (pa.size() != pb.size()) return false;
  for (auto ia = pa.begin(), ib = pb.begin(); ia != pa.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    if (ia->second.rounds != ib->second.rounds) return false;
    if (ia->second.messages != ib->second.messages) return false;
  }
  return true;
}

void print_ledger(std::string_view title, const cost_ledger& ledger) {
  std::cout << title << ": rounds=" << ledger.rounds()
            << " messages=" << ledger.messages() << "\n";
  for (const auto& [phase, cost] : ledger.phases())
    std::cout << "  " << phase << ": rounds=" << cost.rounds
              << " messages=" << cost.messages << "\n";
}

int run_record(const std::vector<std::string>& args) {
  int p = 3;
  vertex n = 160;
  double prob = 0.08;
  std::uint64_t seed = 7;
  int threads = 1;
  std::string out_path = "trace.bin";
  std::string jsonl_path;
  for (std::size_t i = 0; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return usage();
    const std::string& key = args[i];
    const std::string& val = args[i + 1];
    if (key == "--p")
      p = std::atoi(val.c_str());
    else if (key == "--n")
      n = vertex(std::atol(val.c_str()));
    else if (key == "--prob")
      prob = std::atof(val.c_str());
    else if (key == "--seed")
      seed = std::uint64_t(std::atoll(val.c_str()));
    else if (key == "--threads")
      threads = std::atoi(val.c_str());
    else if (key == "--out")
      out_path = val;
    else if (key == "--jsonl")
      jsonl_path = val;
    else
      return usage();
  }

  const graph g = gen::gnp(n, prob, seed);
  listing_session session(
      g, {.engine = listing_engine::congest_sim, .threads = threads});
  listing_query q;
  q.p = p;
  q.trace = true;
  const auto r = session.run(q);
  if (!r.report.trace) {
    std::cerr << "error: run returned no trace\n";
    return 1;
  }
  const trace_log& log = *r.report.trace;

  // Self-check: the measured model must reproduce the live ledger exactly.
  const cost_ledger replayed = replay_ledger(log, replay_model::measured);
  if (!ledgers_equal(replayed, r.report.ledger)) {
    std::cerr << "error: measured replay diverged from the live ledger\n";
    print_ledger("live", r.report.ledger);
    print_ledger("replayed", replayed);
    return 1;
  }

  std::ofstream bin(out_path, std::ios::binary);
  log.write_binary(bin);
  bin.flush();
  if (!bin) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  if (!jsonl_path.empty()) {
    std::ofstream js(jsonl_path);
    log.write_jsonl(js);
    js.flush();
    if (!js) {
      std::cerr << "error: could not write " << jsonl_path << "\n";
      return 1;
    }
  }

  const trace_summary s = r.report.trace_stats;
  std::cout << "recorded " << out_path << ": p=" << p << " n=" << n
            << " cliques=" << r.count << "\n"
            << "  events=" << s.events << " (exchanges=" << s.exchanges
            << " clique_exchanges=" << s.clique_exchanges
            << " routes=" << s.routes << " charges=" << s.charges << ")\n"
            << "  scopes=" << s.scopes << " phases=" << s.phases
            << " max_rounds=" << s.max_rounds
            << " mean_dst_density=" << s.mean_dst_density << "\n";
  print_ledger("live ledger (== measured replay)", r.report.ledger);
  return 0;
}

int run_replay(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& path = args[0];
  std::string model_name = "all";
  for (std::size_t i = 1; i < args.size(); i += 2) {
    if (i + 1 >= args.size() || args[i] != "--model") return usage();
    model_name = args[i + 1];
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "error: could not open " << path << "\n";
    return 1;
  }
  const trace_log log = trace_log::read_binary(in);
  const trace_summary s = log.summarize();
  std::cout << path << ": events=" << s.events << " scopes=" << s.scopes
            << " phases=" << s.phases << "\n";

  std::vector<replay_model> models;
  if (model_name == "all") {
    models = {replay_model::measured, replay_model::congestion_spec,
              replay_model::cs20};
  } else {
    replay_model m;
    if (!parse_replay_model(model_name, m)) return usage();
    models = {m};
  }
  for (replay_model m : models)
    print_ledger(std::string(replay_model_name(m)), replay_ledger(log, m));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "record") return run_record(args);
    if (cmd == "replay") return run_replay(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
