// Standalone shard worker: serves dcl::shard::run_shard_worker over an
// inherited socket descriptor. Launched by shard::launch_exec_workers (or
// any coordinator that passes a connected stream fd):
//
//   shard_worker --fd N
//
// Exits 0 on clean shutdown (or coordinator EOF), 1 on a protocol error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "shard/channel.hpp"
#include "shard/worker.hpp"

int main(int argc, char** argv) {
  int fd = -1;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--fd") == 0) fd = std::atoi(argv[i + 1]);
  if (fd < 0) {
    std::fprintf(stderr, "usage: shard_worker --fd N\n");
    return 64;
  }
  try {
    dcl::shard::fd_channel ch(fd);
    dcl::shard::run_shard_worker(ch);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard_worker: %s\n", e.what());
    return 1;
  }
}
